package qoscluster

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"math"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/svc"
)

// A Topology declares a site as data: ordered tiers of hosts, each with a
// role, a cyclic hardware mix, an IP block and the service templates
// deployed across its hosts. NewSite turns a Topology into a running
// scenario; PaperTopology and SmallTopology are the two canned values the
// paper's evaluation uses, and RegisterTopology / LoadTopology let
// callers add their own — in Go or as a JSON file — and select them by
// name (`qossim -site <name|file.json>`).
type Topology struct {
	// Name identifies the topology: it is the registry key, the campaign
	// site label, and the datacentre name hosts carry.
	Name string `json:"name"`
	Geo  string `json:"geo"`
	// Tiers deploy in order; host and service construction order (and
	// therefore the simulation's RNG consumption) is fully determined by
	// the declaration, so the same topology always builds the same site.
	Tiers []Tier `json:"tiers"`
	// Probes, when non-nil, enables the batched probe dispatcher: every
	// service is health-probed once per cycle by per-tier coalesced batch
	// schedules instead of per-service events — the engine that makes
	// datacentre-scale sites tractable. nil (every pre-existing topology)
	// changes nothing: sites without a spec schedule no probes and stay
	// byte-identical to the pre-probe engine.
	Probes *ProbeSpec `json:"probes,omitempty"`
	// Workload optionally names a registered statistical workload spec
	// (workload.RegisterSpec / `-workload file.json`): batch submissions
	// then arrive through per-class interarrival processes with surge
	// scenarios instead of the legacy hourly ticker. The name resolves
	// when the site is built — not at Validate — so a topology may name
	// a spec loaded from a file after the topology itself. Empty (every
	// pre-existing topology) keeps the legacy generator byte-identically.
	Workload string `json:"workload,omitempty"`
}

// DefaultProbeSlots is the per-tier batch count a ProbeSpec with Slots 0
// gets: enough phase spread to avoid a thundering herd, few enough that a
// tier of hundreds of services still coalesces to a handful of scheduler
// events per cycle.
const DefaultProbeSlots = 8

// ProbeSpec configures the site-wide probe dispatcher. Each cycle, every
// tier's member services are probed exactly once, split across Slots
// evenly-phased batches; one scheduler event per (tier, slot) walks its
// contiguous slice of members. The zero value means defaults everywhere.
type ProbeSpec struct {
	// Slots is the number of coalesced batches per tier per cycle
	// (0 = DefaultProbeSlots).
	Slots int `json:"slots,omitempty"`
	// PeriodMinutes is the probe cycle length in minutes (0 = the agents'
	// 5-minute cron).
	PeriodMinutes int `json:"period_minutes,omitempty"`
}

func (ps *ProbeSpec) validate() error {
	if ps == nil {
		return nil
	}
	if ps.Slots < 0 || ps.Slots > 4096 {
		return fmt.Errorf("probes: %d slots out of range [0, 4096]", ps.Slots)
	}
	if ps.PeriodMinutes < 0 || ps.PeriodMinutes > 1440 {
		return fmt.Errorf("probes: period %d minutes out of range [0, 1440]", ps.PeriodMinutes)
	}
	return nil
}

// Tier is one homogeneous-role block of hosts.
type Tier struct {
	// Name labels the tier and prefixes its host names (db -> db001...).
	Name string `json:"name"`
	// Role is the hosts' function: "database", "transaction" or
	// "frontend". ("admin" is reserved: administration hosts are added by
	// ModeAgents itself.)
	Role  string `json:"role"`
	Hosts int    `json:"hosts"`
	// Hardware is the cyclic model mix: host i runs Hardware[i%len].
	// Model names come from cluster.Models (E10K, E4500, E450, E220R,
	// Ultra10, HP-K, HP-T, SP2, linux-x86).
	Hardware []string `json:"hardware"`
	// IPBlock is the tier's base /24 prefix ("10.2.0"); host i gets
	// .i+1. A tier larger than 254 hosts spans consecutive /24 blocks by
	// incrementing the third octet ("10.2.0", "10.2.1", ...), so one
	// declared block serves a datacentre-scale tier; Validate rejects
	// spans that run past .255 or overlap another tier's span. "10.1.0"
	// is reserved for the administration tier.
	IPBlock string `json:"ip_block"`
	// Services are deployed per host, in order.
	Services []ServiceTemplate `json:"services,omitempty"`
	// Workload optionally scopes the site's offered load for this tier.
	// nil inherits the single global workload rule (every tier weight 1),
	// which is byte-identical to the pre-domain generator.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Faults optionally scopes the fault campaign for this tier. nil
	// means weight 1 for every category with no blackout windows.
	Faults *FaultsSpec `json:"faults,omitempty"`
}

// WorkloadSpec is a tier's workload domain: how the site's offered load
// lands on this tier relative to the others. Every field is a
// multiplicative weight defaulting to 1; nil fields inherit the default,
// so a spec can adjust one axis without restating the rest. Weight 0 is
// explicit exclusion. A topology in which no tier declares a spec offers
// exactly the pre-domain global load.
type WorkloadSpec struct {
	// AnalystShare weights the tier's slice of interactive analyst load:
	// front-end-role hosts split the configured peak-analyst population
	// proportionally to their tier's share, and database-host ambient
	// query load on the tier scales by it directly. (Transaction-host
	// ambience is feed processing and follows FeedWeight instead.)
	AnalystShare *float64 `json:"analyst_share,omitempty"`
	// BatchIntensity weights the tier's LSF targets in batch-submission
	// draws — the day trickle and the 22:00 overnight drop alike. 0
	// removes the tier's targets from the submission pool (they still
	// serve cross-tier dependencies and batch rescue).
	BatchIntensity *float64 `json:"batch_intensity,omitempty"`
	// FeedWeight scales the market-data feed load on the tier's
	// transaction-role hosts (ambient CPU and disk activity).
	FeedWeight *float64 `json:"feed_weight,omitempty"`
	// DiurnalAmplitude scales the tier's day/night swing around the peak:
	// 1 follows the site's diurnal shape, 0 flattens the tier to constant
	// peak-level load (a 24h estate), values up to 2 exaggerate the
	// swing (the shape clamps at zero load).
	DiurnalAmplitude *float64 `json:"diurnal_amplitude,omitempty"`
}

// FaultsSpec is a tier's fault domain: how the site-wide fault campaign
// lands on this tier. The campaign's category arrival processes are
// unchanged; domains bias which tier each arrival breaks. Weights are
// relative shares over the tiers the category can actually break —
// tiers with nothing the category's injector targets (no LSF targets
// for mid-crash, no front-end services for front-end, ...) are excluded
// automatically, so a weight on the only eligible tier is a no-op.
type FaultsSpec struct {
	// Rates maps a Figure-2 category name (e.g. "mid-crash", "human") to
	// this tier's selection-weight multiplier for that category. Unlisted
	// categories keep weight 1; 0 excludes the tier from a category.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Only restricts the tier to the listed categories: any category not
	// named gets weight 0 here. Empty means no restriction.
	Only []string `json:"only,omitempty"`
	// Blackouts are recurring daily windows during which no fault lands
	// on the tier; arrivals drawn inside one slide forward past its end,
	// the same first-order bias as the campaign's arrival windows.
	Blackouts []Blackout `json:"blackouts,omitempty"`
}

// Blackout is a recurring daily hour window [FromHour, ToHour) in which
// a tier receives no fault arrivals. ToHour <= FromHour wraps past
// midnight, so {22, 6} covers the overnight hours.
type Blackout struct {
	FromHour int `json:"from_hour"`
	ToHour   int `json:"to_hour"`
}

// Weight is a convenience for building WorkloadSpec values in Go: the
// optional weight fields are pointers (absent means "inherit default 1"),
// and Weight(v) is the literal-friendly way to set one.
func Weight(v float64) *float64 { return &v }

// validWeight vets one optional weight field.
func validWeight(tier, field string, p *float64, max float64) error {
	if p == nil {
		return nil
	}
	if math.IsNaN(*p) || math.IsInf(*p, 0) || *p < 0 || *p > max {
		return fmt.Errorf("tier %q: workload %s %v out of range [0, %g]", tier, field, *p, max)
	}
	return nil
}

func (ws *WorkloadSpec) validate(tier string) error {
	if ws == nil {
		return nil
	}
	if err := validWeight(tier, "analyst_share", ws.AnalystShare, 1e6); err != nil {
		return err
	}
	if err := validWeight(tier, "batch_intensity", ws.BatchIntensity, 1e6); err != nil {
		return err
	}
	if err := validWeight(tier, "feed_weight", ws.FeedWeight, 1e6); err != nil {
		return err
	}
	return validWeight(tier, "diurnal_amplitude", ws.DiurnalAmplitude, 2)
}

// knownCategory reports whether name is one of the Figure-2 categories.
func knownCategory(name string) bool {
	return slices.Contains(metrics.Categories, metrics.Category(name))
}

func categoryNames() string {
	names := make([]string, len(metrics.Categories))
	for i, c := range metrics.Categories {
		names[i] = string(c)
	}
	return strings.Join(names, ", ")
}

func (fs *FaultsSpec) validate(tier string) error {
	if fs == nil {
		return nil
	}
	// Map iteration is unordered; sort the keys so a multi-error spec
	// always reports the same first problem.
	for _, cat := range slices.Sorted(maps.Keys(fs.Rates)) {
		if !knownCategory(cat) {
			return fmt.Errorf("tier %q: fault rate for unknown category %q (known: %s)", tier, cat, categoryNames())
		}
		if r := fs.Rates[cat]; math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("tier %q: fault rate %v for category %q (want a finite multiplier >= 0)", tier, r, cat)
		}
	}
	for _, cat := range fs.Only {
		if !knownCategory(cat) {
			return fmt.Errorf("tier %q: faults.only names unknown category %q (known: %s)", tier, cat, categoryNames())
		}
	}
	covered := [24]bool{}
	for _, b := range fs.Blackouts {
		if b.FromHour < 0 || b.FromHour > 23 || b.ToHour < 0 || b.ToHour > 23 {
			return fmt.Errorf("tier %q: blackout {%d,%d} hours out of range [0,23]", tier, b.FromHour, b.ToHour)
		}
		if b.FromHour == b.ToHour {
			return fmt.Errorf("tier %q: blackout {%d,%d} is a full day; a tier cannot be blacked out around the clock",
				tier, b.FromHour, b.ToHour)
		}
		for h := b.FromHour; h != b.ToHour; h = (h + 1) % 24 {
			covered[h] = true
		}
	}
	for h := 0; ; h++ {
		if h == 24 {
			return fmt.Errorf("tier %q: blackouts cover all 24 hours; faults could never land", tier)
		}
		if !covered[h] {
			break
		}
	}
	return nil
}

// ServiceTemplate stamps one service kind across a tier's hosts.
type ServiceTemplate struct {
	// Kind is the svc.Kind: oracle, sybase, webserver, frontend, lsf,
	// feedhandler.
	Kind string `json:"kind"`
	// Name is the instance-name pattern: "{host}" expands to the host
	// name, a fmt verb (e.g. "ORA-%03d") to the 1-based host ordinal
	// within the tier.
	Name string `json:"name"`
	// Port for host i is Port + i*PortStep (i 0-based), mirroring how the
	// paper's site spread listener ports across a tier.
	Port     int `json:"port,omitempty"`
	PortStep int `json:"port_step,omitempty"`
	// Cycle/Phases select a subset of hosts: with Cycle > 1 the template
	// deploys on host i iff i%Cycle is listed in Phases. The paper's
	// database tier is oracle on phases {0,1,2} and sybase on {3} of a
	// 4-cycle. Cycle 0 or 1 means every host.
	Cycle  int   `json:"cycle,omitempty"`
	Phases []int `json:"phases,omitempty"`
	// DependsOn names another tier: instance i depends on that tier's
	// LSF-target services, round-robin (the paper's front ends each pin
	// one database).
	DependsOn string `json:"depends_on,omitempty"`
	// LSFTarget marks the service as a batch execution target: it gets an
	// LSF slot limit, joins the workload generator's submission pool and
	// serves as the dependency pool for DependsOn.
	LSFTarget bool `json:"lsf_target,omitempty"`
}

// adminIPBlock is where ModeAgents puts the administration pair.
const adminIPBlock = "10.1.0"

// hostsPerBlock is the usable host addresses in one /24 block (.1–.254).
const hostsPerBlock = 254

// splitIPBlock parses a /24 prefix like "10.2.0" into its two-octet
// network prefix ("10.2") and third-octet base (0), rejecting anything
// that is not three in-range numeric octets. Tiers spanning multiple
// blocks increment the base, so it must be genuinely numeric — "10.02.x"
// or "10.two.0" would make the span arithmetic meaningless.
func splitIPBlock(block string) (prefix string, base int, err error) {
	parts := strings.Split(block, ".")
	if len(parts) != 3 {
		return "", 0, fmt.Errorf("IP block %q (want a /24 prefix like \"10.2.0\")", block)
	}
	octets := [3]int{}
	for i, p := range parts {
		n := 0
		if p == "" || len(p) > 3 || (len(p) > 1 && p[0] == '0') {
			return "", 0, fmt.Errorf("IP block %q: octet %q (want a plain decimal 0-255)", block, p)
		}
		for _, r := range p {
			if r < '0' || r > '9' {
				return "", 0, fmt.Errorf("IP block %q: octet %q (want a plain decimal 0-255)", block, p)
			}
			n = n*10 + int(r-'0')
		}
		if n > 255 {
			return "", 0, fmt.Errorf("IP block %q: octet %d out of range 0-255", block, n)
		}
		octets[i] = n
	}
	return parts[0] + "." + parts[1], octets[2], nil
}

// ipBlocks reports how many consecutive /24 blocks the tier's hosts span.
func (t Tier) ipBlocks() int { return (t.Hosts + hostsPerBlock - 1) / hostsPerBlock }

// roleFor maps a tier's declared role onto the cluster role.
func roleFor(role string) (cluster.Role, error) {
	switch role {
	case "database":
		return cluster.RoleDatabase, nil
	case "transaction":
		return cluster.RoleTransaction, nil
	case "frontend":
		return cluster.RoleFrontEnd, nil
	case "admin":
		return "", fmt.Errorf("role %q is reserved for the administration tier ModeAgents adds", role)
	default:
		return "", fmt.Errorf("unknown role %q (want database, transaction or frontend)", role)
	}
}

// appliesTo reports whether the template deploys on the tier's i-th host
// (0-based).
func (st ServiceTemplate) appliesTo(i int) bool {
	if st.Cycle <= 1 {
		return true
	}
	for _, p := range st.Phases {
		if i%st.Cycle == p {
			return true
		}
	}
	return false
}

// instanceName renders the template's name pattern for one host.
func (st ServiceTemplate) instanceName(ord int, host string) string {
	s := strings.ReplaceAll(st.Name, "{host}", host)
	if strings.Contains(s, "%") {
		s = fmt.Sprintf(s, ord)
	}
	return s
}

// Validate checks the topology is buildable: named, at least one tier,
// unique tier names and IP blocks, positive host counts, known roles,
// hardware models and service kinds, in-range phases, unique expanded
// service names, and cross-tier dependencies that resolve to a non-empty
// LSF-target pool.
func (t Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("topology has no name")
	}
	if len(t.Tiers) == 0 {
		return fmt.Errorf("topology %q declares no tiers", t.Name)
	}
	if err := t.Probes.validate(); err != nil {
		return fmt.Errorf("topology %q: %w", t.Name, err)
	}
	// Each tier's hosts occupy a contiguous span of /24 blocks starting at
	// its declared base; spans under the same two-octet prefix must not
	// overlap each other or the reserved administration block.
	type ipSpan struct {
		tier   string
		lo, hi int // inclusive third-octet range
	}
	adminPrefix, adminBase, _ := splitIPBlock(adminIPBlock)
	tierNames := map[string]bool{}
	ipSpans := map[string][]ipSpan{adminPrefix: {{tier: "", lo: adminBase, hi: adminBase}}}
	for _, tier := range t.Tiers {
		if tier.Name == "" {
			return fmt.Errorf("tier with no name")
		}
		if !validTierName(tier.Name) {
			return fmt.Errorf("tier name %q: want a letter followed by letters, digits, '-' or '_' (it prefixes host names and feeds the service name patterns)", tier.Name)
		}
		if tierNames[tier.Name] {
			return fmt.Errorf("duplicate tier name %q", tier.Name)
		}
		tierNames[tier.Name] = true
		if tier.Hosts <= 0 {
			return fmt.Errorf("tier %q: %d hosts (want > 0)", tier.Name, tier.Hosts)
		}
		if _, err := roleFor(tier.Role); err != nil {
			return fmt.Errorf("tier %q: %w", tier.Name, err)
		}
		if len(tier.Hardware) == 0 {
			return fmt.Errorf("tier %q: empty hardware mix", tier.Name)
		}
		for _, model := range tier.Hardware {
			if _, ok := cluster.ModelByName(model); !ok {
				return fmt.Errorf("tier %q: unknown hardware model %q (known: %s)",
					tier.Name, model, strings.Join(modelNames(), ", "))
			}
		}
		prefix, base, err := splitIPBlock(tier.IPBlock)
		if err != nil {
			return fmt.Errorf("tier %q: %w", tier.Name, err)
		}
		span := ipSpan{tier: tier.Name, lo: base, hi: base + tier.ipBlocks() - 1}
		if span.hi > 255 {
			return fmt.Errorf("tier %q: %d hosts spans /24 blocks %s.%d through .%d, exhausting the IP space past .255; lower the block base or split the tier",
				tier.Name, tier.Hosts, prefix, span.lo, span.hi)
		}
		for _, other := range ipSpans[prefix] {
			if span.lo > other.hi || span.hi < other.lo {
				continue
			}
			if other.tier == "" {
				return fmt.Errorf("tier %q: IP block %s is reserved for the administration tier", tier.Name, adminIPBlock)
			}
			return fmt.Errorf("tiers %q and %q share IP block %s.%d (spans .%d-.%d and .%d-.%d overlap)",
				other.tier, tier.Name, prefix, max(span.lo, other.lo), other.lo, other.hi, span.lo, span.hi)
		}
		ipSpans[prefix] = append(ipSpans[prefix], span)
		for _, st := range tier.Services {
			if err := st.validate(tier.Name); err != nil {
				return err
			}
		}
		if err := tier.Workload.validate(tier.Name); err != nil {
			return err
		}
		if err := tier.Faults.validate(tier.Name); err != nil {
			return err
		}
	}
	// Expand the templates: service names must be unique site-wide
	// (svc.Directory is name-keyed), and per-tier LSF-target counts are
	// taken over expanded instances — a target template whose cycle/phases
	// select no host provides nothing.
	// Host names are checked explicitly: the ordinal suffix widens past
	// three digits on large tiers, so digit-suffixed tier names can
	// collide (tier "web" host 2001 is "web2001" — also tier "web2" host
	// 1). The map costs one insert per host and makes the uniqueness
	// argument hold at any scale.
	hostSeen := map[string]string{} // host name -> tier
	seen := map[string]string{}
	targets := map[string]int{} // tier name -> expanded LSF-target instances
	for _, tier := range t.Tiers {
		for i := 0; i < tier.Hosts; i++ {
			host := tier.hostName(i)
			if prev, dup := hostSeen[host]; dup && prev != tier.Name {
				return fmt.Errorf("host name %q expands in both tier %q and tier %q (digit-suffixed tier names collide once ordinals widen; rename a tier)",
					host, prev, tier.Name)
			}
			hostSeen[host] = tier.Name
			for _, st := range tier.Services {
				if !st.appliesTo(i) {
					continue
				}
				name := st.instanceName(i+1, host)
				if prev, dup := seen[name]; dup {
					return fmt.Errorf("service name %q expands on both %s and %s (name patterns need a %%d ordinal or {host})",
						name, prev, host)
				}
				seen[name] = host
				if st.LSFTarget {
					targets[tier.Name]++
				}
			}
		}
	}
	// Cross-tier dependencies must point at a tier whose expansion
	// actually publishes targets (the dependency pool is round-robined,
	// so an empty one is unusable). A topology with no targets at all is
	// legal — the batch workload just idles and only interactive/feed
	// load is offered.
	for _, tier := range t.Tiers {
		for _, st := range tier.Services {
			if st.DependsOn == "" {
				continue
			}
			if !tierNames[st.DependsOn] {
				return fmt.Errorf("tier %q service %q depends on unknown tier %q", tier.Name, st.Name, st.DependsOn)
			}
			if targets[st.DependsOn] == 0 {
				return fmt.Errorf("tier %q service %q depends on tier %q, which expands to no lsf_target services",
					tier.Name, st.Name, st.DependsOn)
			}
		}
	}
	return nil
}

func (st ServiceTemplate) validate(tier string) error {
	if st.Name == "" {
		return fmt.Errorf("tier %q: service template with no name pattern", tier)
	}
	// fmt reports a malformed pattern (wrong verb, stray %, too many
	// verbs) with a "%!" marker in its output; catch it here instead of
	// shipping garbage service names into reports and DGSPLs.
	if rendered := st.instanceName(1, "host"); strings.Contains(rendered, "%!") {
		return fmt.Errorf("tier %q service %q: bad name pattern (renders as %q); use one integer verb like %%03d or {host}",
			tier, st.Name, rendered)
	}
	if _, err := svc.SpecFor(svc.Kind(st.Kind), "probe", 1); err != nil {
		return fmt.Errorf("tier %q service %q: unknown kind %q", tier, st.Name, st.Kind)
	}
	if st.Cycle < 0 {
		return fmt.Errorf("tier %q service %q: negative cycle %d", tier, st.Name, st.Cycle)
	}
	if st.Cycle > 1 && len(st.Phases) == 0 {
		return fmt.Errorf("tier %q service %q: cycle %d without phases deploys nowhere meaningful; list phases",
			tier, st.Name, st.Cycle)
	}
	if st.Cycle <= 1 && len(st.Phases) > 0 {
		return fmt.Errorf("tier %q service %q: phases %v without a cycle > 1", tier, st.Name, st.Phases)
	}
	for _, p := range st.Phases {
		if p < 0 || p >= st.Cycle {
			return fmt.Errorf("tier %q service %q: phase %d out of range [0,%d)", tier, st.Name, p, st.Cycle)
		}
	}
	return nil
}

// validTierName restricts tier names to a letter followed by letters,
// digits, '-' or '_': the name prefixes host names and flows through the
// service-name fmt pass, so characters like '%' would mangle both.
func validTierName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '_'):
		default:
			return false
		}
	}
	return name != ""
}

func (t Tier) hostName(i int) string { return fmt.Sprintf("%s%03d", t.Name, i+1) }

// hostIP addresses the tier's i-th host. The first 254 hosts live in the
// declared block (byte-identical to the single-block scheme every
// pre-existing topology used); later hosts spill into consecutive /24
// blocks by incrementing the third octet, as Validate guarantees is safe.
func (t Tier) hostIP(i int) string {
	if i < hostsPerBlock {
		return fmt.Sprintf("%s.%d", t.IPBlock, i+1)
	}
	prefix, base, err := splitIPBlock(t.IPBlock)
	if err != nil {
		// Unvalidated tier with an unparseable block: keep the legacy
		// single-block form rather than inventing an address.
		return fmt.Sprintf("%s.%d", t.IPBlock, i+1)
	}
	return fmt.Sprintf("%s.%d.%d", prefix, base+i/hostsPerBlock, i%hostsPerBlock+1)
}

func (t Tier) hardwareFor(i int) cluster.HardwareModel {
	m, _ := cluster.ModelByName(t.Hardware[i%len(t.Hardware)])
	return m
}

func modelNames() []string {
	names := make([]string, 0, len(cluster.Models))
	for _, m := range cluster.Models {
		names = append(names, m.Name)
	}
	return names
}

// JSON renders the topology in its canonical JSON form — the same shape
// LoadTopology reads, so a topology survives a write/load round trip
// unchanged.
func (t Topology) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// LoadTopology decodes and validates a JSON topology. Unknown fields are
// rejected so a typo'd "hardwares" key fails loudly instead of silently
// deploying defaults.
func LoadTopology(r io.Reader) (Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("decode topology: %w", err)
	}
	// One document per file: trailing content (say, a botched merge
	// concatenating two topologies) must not be silently discarded.
	if _, err := dec.Token(); err != io.EOF {
		return Topology{}, fmt.Errorf("decode topology: trailing data after the topology document")
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// LoadTopologyFile reads a topology JSON file.
func LoadTopologyFile(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, err
	}
	defer f.Close()
	t, err := LoadTopology(f)
	if err != nil {
		return Topology{}, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// --- Named-topology registry ---

var (
	topoMu  sync.RWMutex
	topoReg = map[string]Topology{}
)

// RegisterTopology validates a topology and registers it under its Name,
// replacing any earlier registration, so scenarios and campaigns can
// select it with `-site <name>`.
func RegisterTopology(t Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	topoReg[t.Name] = t
	return nil
}

// TopologyByName looks up a registered topology.
func TopologyByName(name string) (Topology, bool) {
	topoMu.RLock()
	defer topoMu.RUnlock()
	t, ok := topoReg[name]
	return t, ok
}

// TopologyNames lists the registered topologies, sorted.
func TopologyNames() []string {
	topoMu.RLock()
	defer topoMu.RUnlock()
	names := make([]string, 0, len(topoReg))
	for name := range topoReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ResolveTopology returns the named topology, synthesising parameterised
// families on demand: beyond the registered names, "megasite-N" builds,
// registers and returns MegaSiteTopology(N) on first use, so
// `-site megasite-25000` works without a registration step.
func ResolveTopology(name string) (Topology, bool) {
	if t, ok := TopologyByName(name); ok {
		return t, true
	}
	n, ok := megaSiteHosts(name)
	if !ok {
		return Topology{}, false
	}
	t := MegaSiteTopology(n)
	if err := RegisterTopology(t); err != nil {
		return Topology{}, false
	}
	return t, true
}

// megaSiteHosts parses "megasite-N" into its host count, rejecting
// malformed or out-of-range names.
func megaSiteHosts(name string) (int, bool) {
	num, ok := strings.CutPrefix(name, "megasite-")
	if !ok || num == "" || len(num) > 6 || num[0] == '0' {
		return 0, false
	}
	n := 0
	for _, r := range num {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	if n < megaSiteMinHosts || n > megaSiteMaxHosts {
		return 0, false
	}
	return n, true
}

func init() {
	mega := MegaSiteTopology(10000)
	mega.Name = "megasite"
	for _, t := range []Topology{
		PaperTopology(), SmallTopology(), WebFarmTopology(), ComputeFarmTopology(), mega,
	} {
		if err := RegisterTopology(t); err != nil {
			panic(err) // built-in topologies must validate
		}
	}
}

// --- Canned topologies ---

// paperShaped builds the paper's three-tier site shape — an
// Oracle/Sybase database tier carrying LSF, a market-data transaction
// tier and a front-end tier pinned to databases — at the given scale.
func paperShaped(name, geo string, db, tx, fe int) Topology {
	t := Topology{Name: name, Geo: geo}
	if db > 0 {
		t.Tiers = append(t.Tiers, Tier{
			Name: "db", Role: "database", Hosts: db, IPBlock: "10.2.0",
			Hardware: []string{"E10K", "E4500", "E4500"},
			Services: []ServiceTemplate{
				{Kind: "oracle", Name: "ORA-%03d", Port: 1521, Cycle: 4, Phases: []int{0, 1, 2}, LSFTarget: true},
				{Kind: "sybase", Name: "SYB-%03d", Port: 4100, Cycle: 4, Phases: []int{3}, LSFTarget: true},
				{Kind: "lsf", Name: "LSF-{host}"},
			},
		})
	}
	if tx > 0 {
		t.Tiers = append(t.Tiers, Tier{
			Name: "tx", Role: "transaction", Hosts: tx, IPBlock: "10.3.0",
			Hardware: []string{"E450", "HP-K", "E220R", "HP-T", "linux-x86", "Ultra10"},
			Services: []ServiceTemplate{
				{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
			},
		})
	}
	if fe > 0 {
		feTier := Tier{
			Name: "fe", Role: "frontend", Hosts: fe, IPBlock: "10.4.0",
			Hardware: []string{"SP2"},
			Services: []ServiceTemplate{
				{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1},
			},
		}
		if db > 0 {
			feTier.Services[0].DependsOn = "db"
		}
		t.Tiers = append(t.Tiers, feTier)
	}
	return t
}

// PaperTopology is the paper's full-size evaluation site: 100 database,
// 55 transaction and 60 front-end servers with the §4 hardware spread.
// Use it for structure demonstrations; year-long simulations want
// SmallTopology, whose downtime ledger is equivalent because fault
// arrival rates are site-wide.
func PaperTopology() Topology { return paperShaped("paper", "UK", 100, 55, 60) }

// SmallTopology is the scaled site for long simulations: the fault
// campaign is defined per site, not per host, so category downtime totals
// are unaffected by the scale-down while event counts drop by an order of
// magnitude.
func SmallTopology() Topology { return paperShaped("small", "UK", 6, 2, 3) }

// WebFarmTopology is a front-end-heavy web estate: a small database core
// feeding a large commodity web tier and a GUI tier — the opposite load
// shape to the paper's database-dominated site. Its per-tier domains make
// the divergence real rather than cosmetic: the web tier carries three
// analyst-shares of near-flat interactive load, and the human-error,
// firewall and hardware fault categories land mostly on its commodity
// boxes (fault weights are relative shares over the tiers a category can
// actually break — mid-job crashes always hit the batch core, the only
// tier with execution targets).
func WebFarmTopology() Topology {
	return Topology{
		Name: "webfarm", Geo: "UK",
		Tiers: []Tier{
			{Name: "db", Role: "database", Hosts: 4, IPBlock: "10.2.0",
				Hardware: []string{"E4500"},
				Services: []ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				},
				Workload: &WorkloadSpec{BatchIntensity: Weight(0.5)},
				Faults:   &FaultsSpec{Rates: map[string]float64{"human": 0.5, "hardware": 0.5}}},
			{Name: "web", Role: "frontend", Hosts: 18, IPBlock: "10.5.0",
				Hardware: []string{"linux-x86", "linux-x86", "SP2"},
				Services: []ServiceTemplate{
					{Kind: "webserver", Name: "WEB-%03d", Port: 8080, PortStep: 1},
				},
				Workload: &WorkloadSpec{AnalystShare: Weight(3), DiurnalAmplitude: Weight(0.5)},
				Faults:   &FaultsSpec{Rates: map[string]float64{"human": 2, "fw/nw": 2.5, "hardware": 2}}},
			{Name: "fe", Role: "frontend", Hosts: 10, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 9000, PortStep: 1, DependsOn: "db"},
				},
				Workload: &WorkloadSpec{AnalystShare: Weight(1.5)}},
		},
	}
}

// Megasite family bounds. The web remainder is cut into chunks of at
// most webChunkHosts so every chunk's /24 span fits one second-octet
// prefix (256 blocks x 254 addresses); the 130000-host ceiling keeps the
// chunk letters within "web-a".."web-z" with plenty of slack.
const (
	megaSiteMinHosts = 100
	megaSiteMaxHosts = 130000
	webChunkHosts    = 60000
)

// MegaSiteTopology is the datacentre-scale site family: a database core
// of ~1% of the hosts (every one an LSF target), a transaction tier of
// ~0.5% and the remainder a commodity web estate, chunked into tiers of
// at most webChunkHosts. The topology opts into the batched probe
// dispatcher (Probes, all defaults) — per-service probe events at this
// scale would dominate the scheduler, and per-host intelliagents are out
// of reach entirely, so megasites run ModeManual with probe-driven
// detection feeding the same repair pipeline.
func MegaSiteTopology(total int) Topology {
	db := total / 100
	if db < 4 {
		db = 4
	}
	tx := total / 200
	if tx < 2 {
		tx = 2
	}
	t := Topology{
		Name: fmt.Sprintf("megasite-%d", total), Geo: "UK",
		Probes: &ProbeSpec{},
		Tiers: []Tier{
			{Name: "db", Role: "database", Hosts: db, IPBlock: "10.8.0",
				Hardware: []string{"E10K", "E4500", "E4500"},
				Services: []ServiceTemplate{
					{Kind: "oracle", Name: "ORA-{host}", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "tx", Role: "transaction", Hosts: tx, IPBlock: "10.9.0",
				Hardware: []string{"E450", "HP-K", "linux-x86"},
				Services: []ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-{host}", Port: 7000},
				}},
		},
	}
	// Chunk names are letter-suffixed ("web-a", "web-b", ...): a digit
	// suffix would collide with widened host ordinals under the explicit
	// host-name check. Each chunk gets its own second-octet prefix.
	for web, idx := total-db-tx, 0; web > 0; idx++ {
		n := web
		if n > webChunkHosts {
			n = webChunkHosts
		}
		t.Tiers = append(t.Tiers, Tier{
			Name: "web-" + string(rune('a'+idx)), Role: "frontend", Hosts: n,
			IPBlock:  fmt.Sprintf("10.%d.0", 16+idx),
			Hardware: []string{"linux-x86", "linux-x86", "SP2"},
			Services: []ServiceTemplate{
				{Kind: "webserver", Name: "WEB-{host}", Port: 8080},
			},
		})
		web -= n
	}
	return t
}

// ComputeFarmTopology is a batch-dominated compute farm: twenty heavy
// execution hosts (every one an LSF target), a token pair of feed
// handlers and a minimal GUI tier. Its per-tier domains put the offered
// load where a farm has it — double batch intensity and a quarter of the
// analyst ambience on the compute tier, running nearly flat around the
// clock — and bias faults the same way: hardware failures cluster on the
// execution hosts (weight 2 over the other tiers), the feed pair enjoys
// an overnight change freeze, and the GUI tier only ever sees front-end,
// human and network errors.
func ComputeFarmTopology() Topology {
	return Topology{
		Name: "computefarm", Geo: "UK",
		Tiers: []Tier{
			{Name: "compute", Role: "database", Hosts: 20, IPBlock: "10.6.0",
				Hardware: []string{"E10K", "E4500", "HP-K", "E4500"},
				Services: []ServiceTemplate{
					{Kind: "oracle", Name: "CDB-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				},
				Workload: &WorkloadSpec{
					AnalystShare:     Weight(0.25),
					BatchIntensity:   Weight(2),
					DiurnalAmplitude: Weight(0.25),
				},
				Faults: &FaultsSpec{Rates: map[string]float64{"hardware": 2}}},
			{Name: "feed", Role: "transaction", Hosts: 2, IPBlock: "10.3.0",
				Hardware: []string{"E450"},
				Services: []ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				},
				Workload: &WorkloadSpec{FeedWeight: Weight(2)},
				Faults:   &FaultsSpec{Blackouts: []Blackout{{FromHour: 22, ToHour: 6}}}},
			{Name: "fe", Role: "frontend", Hosts: 2, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "compute"},
				},
				Faults: &FaultsSpec{Only: []string{"front-end", "human", "fw/nw"}}},
		},
	}
}
