package qoscluster

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// tieredTopology is a small three-tier site with both kinds of per-tier
// spec, shared by the validation/round-trip/behaviour tests below.
func tieredTopology() Topology {
	t := paperShaped("tiered", "UK", 4, 2, 3)
	t.Tiers[0].Faults = &FaultsSpec{Rates: map[string]float64{"mid-crash": 2, "human": 0}}
	t.Tiers[1].Workload = &WorkloadSpec{FeedWeight: Weight(1.5)}
	t.Tiers[1].Faults = &FaultsSpec{Blackouts: []Blackout{{FromHour: 22, ToHour: 6}}}
	t.Tiers[2].Workload = &WorkloadSpec{AnalystShare: Weight(2), DiurnalAmplitude: Weight(0.5)}
	t.Tiers[2].Faults = &FaultsSpec{Only: []string{"front-end", "human"}}
	return t
}

func TestTierSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want string // substring of the expected error; "" = must validate
	}{
		{"valid specs", func(tp *Topology) {}, ""},
		{"negative analyst share", func(tp *Topology) {
			tp.Tiers[2].Workload.AnalystShare = Weight(-1)
		}, "analyst_share"},
		{"amplitude above 2", func(tp *Topology) {
			tp.Tiers[2].Workload.DiurnalAmplitude = Weight(2.5)
		}, "diurnal_amplitude"},
		{"unknown rate category", func(tp *Topology) {
			tp.Tiers[0].Faults.Rates["disk-gremlins"] = 1
		}, `unknown category "disk-gremlins"`},
		{"negative rate", func(tp *Topology) {
			tp.Tiers[0].Faults.Rates["lsf"] = -2
		}, "fault rate"},
		{"unknown only category", func(tp *Topology) {
			tp.Tiers[2].Faults.Only = append(tp.Tiers[2].Faults.Only, "meteor")
		}, `unknown category "meteor"`},
		{"blackout hour out of range", func(tp *Topology) {
			tp.Tiers[1].Faults.Blackouts[0].ToHour = 24
		}, "out of range"},
		{"full-day blackout", func(tp *Topology) {
			tp.Tiers[1].Faults.Blackouts[0] = Blackout{FromHour: 6, ToHour: 6}
		}, "full day"},
		{"blackouts covering the clock", func(tp *Topology) {
			tp.Tiers[1].Faults.Blackouts = []Blackout{{FromHour: 0, ToHour: 12}, {FromHour: 12, ToHour: 0}}
		}, "all 24 hours"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo := tieredTopology()
			c.mut(&topo)
			err := topo.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestTierSpecJSONRoundTrip(t *testing.T) {
	topo := tieredTopology()
	js, err := topo.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTopology(bytes.NewReader(js))
	if err != nil {
		t.Fatalf("re-load canonical JSON: %v", err)
	}
	js2, err := loaded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, js2) {
		t.Errorf("tiered topology did not survive a JSON round trip:\nfirst:  %s\nsecond: %s", js, js2)
	}
	if !strings.Contains(string(js), `"workload"`) || !strings.Contains(string(js), `"faults"`) {
		t.Errorf("canonical JSON missing tier spec keys:\n%s", js)
	}
}

func TestTierOverrideValidation(t *testing.T) {
	if _, err := NewSite(SmallTopology(), WithTierWorkload("nosuch", WorkloadSpec{})); err == nil ||
		!strings.Contains(err.Error(), `unknown tier "nosuch"`) {
		t.Errorf("unknown workload-override tier: err = %v", err)
	}
	if _, err := NewSite(SmallTopology(), WithTierFaults("db", FaultsSpec{Rates: map[string]float64{"bogus": 1}})); err == nil ||
		!strings.Contains(err.Error(), "unknown category") {
		t.Errorf("bad faults override: err = %v", err)
	}
	if _, err := NewSite(SmallTopology(), WithTierFaultScale("db", -3)); err == nil ||
		!strings.Contains(err.Error(), "tier-fault-scale") {
		t.Errorf("negative fault scale: err = %v", err)
	}
	site, err := NewSite(SmallTopology(), WithSeed(3), WithTierFaultScale("db", 2))
	if err != nil {
		t.Fatalf("valid fault scale: %v", err)
	}
	if !site.Tiered() {
		t.Error("site with a fault-intensity scale should report tiered")
	}
}

// TestTierWorkloadShapesLoad pins the workload-domain semantics end to
// end: a front-end tier with triple analyst share carries proportionally
// more ambient load than an equal-size tier at the default, and a flat
// (zero-amplitude) tier holds its peak-level load overnight.
func TestTierWorkloadShapesLoad(t *testing.T) {
	topo := Topology{
		Name: "shares", Geo: "UK",
		Tiers: []Tier{
			{Name: "heavy", Role: "frontend", Hosts: 3, IPBlock: "10.8.0", Hardware: []string{"SP2"},
				Services: []ServiceTemplate{{Kind: "frontend", Name: "H-%03d", Port: 8000, PortStep: 1}},
				Workload: &WorkloadSpec{AnalystShare: Weight(3), DiurnalAmplitude: Weight(0)}},
			{Name: "light", Role: "frontend", Hosts: 3, IPBlock: "10.9.0", Hardware: []string{"SP2"},
				Services: []ServiceTemplate{{Kind: "frontend", Name: "L-%03d", Port: 8000, PortStep: 1}}},
		},
	}
	// The default config scales analysts with the (here empty) LSF-target
	// pool; pin the population explicitly so the tiers have load to split.
	cfg := workload.DefaultConfig()
	cfg.PeakAnalysts = 300
	site, err := NewSite(topo, WithSeed(5), WithNoFaults(), WithWorkload(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// 03:00: deep overnight, where the diurnal shape is at its 5% floor —
	// the flat tier should still carry its full (peak) share.
	if err := site.Run(3 * simclock.Hour); err != nil {
		t.Fatal(err)
	}
	load := func(tier string) float64 {
		var sum float64
		for _, h := range site.DC.Hosts() {
			if site.TierOf(h.Name) == tier {
				sum += h.CPUUtilisation() * float64(h.Model.CPUs)
			}
		}
		return sum
	}
	heavy, light := load("heavy"), load("light")
	if light <= 0 {
		t.Fatal("light tier carries no load at all")
	}
	// Heavy: 3 shares of 300 analysts at flat (peak) amplitude ≈ 4.5
	// CPUs of ambience; light: 1 share at the 5% overnight floor ≈ 0.08.
	// Both carry ~1 CPU of service baseline, so assert the gap, not a
	// pure ratio.
	if heavy < 3*light || heavy-light < 3 {
		t.Errorf("heavy tier %.3f CPUs vs light %.3f; want the share/amplitude gap to show", heavy, light)
	}
}

// TestTierFaultDomainsSteerInjection pins the fault-domain semantics: with
// one tier excluded from a category and another double-weighted, the
// ledger's incidents land accordingly.
func TestTierFaultDomainsSteerInjection(t *testing.T) {
	topo := paperShaped("steered", "UK", 6, 2, 3)
	// All human errors go to the db tier; none to fe or tx.
	topo.Tiers[0].Faults = &FaultsSpec{Rates: map[string]float64{"human": 1}}
	topo.Tiers[1].Faults = &FaultsSpec{Rates: map[string]float64{"human": 0}}
	topo.Tiers[2].Faults = &FaultsSpec{Rates: map[string]float64{"human": 0}}
	site, err := NewSite(topo, WithSeed(9), WithFaults([]faultinject.Spec{
		{Category: metrics.CatHuman, MeanInterarrival: 2 * simclock.Day, Window: faultinject.AnyTime},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(90 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	byTier := map[string]int{}
	for _, inc := range site.Ledger.Incidents() {
		byTier[site.TierOf(inc.Host)]++
	}
	if byTier["db"] == 0 {
		t.Error("no human errors landed on the only weighted tier over 90 days")
	}
	if byTier["tx"] != 0 || byTier["fe"] != 0 {
		t.Errorf("zero-weight tiers received faults: %v", byTier)
	}
	rows := site.TierSummaries(site.Sim.Now())
	if len(rows) != 3 || rows[0].Tier != "db" || rows[0].Incidents != byTier["db"] {
		t.Errorf("TierSummaries disagree with the ledger: %+v vs %v", rows, byTier)
	}
}

// TestTierBlackoutRespected proves no fault lands on a blacked-out tier
// during its window.
func TestTierBlackoutRespected(t *testing.T) {
	topo := paperShaped("frozen", "UK", 6, 2, 3)
	for i := range topo.Tiers {
		topo.Tiers[i].Faults = &FaultsSpec{Blackouts: []Blackout{{FromHour: 8, ToHour: 18}}}
	}
	site, err := NewSite(topo, WithSeed(13), WithFaults([]faultinject.Spec{
		{Category: metrics.CatHuman, MeanInterarrival: simclock.Day, Window: faultinject.AnyTime},
		{Category: metrics.CatLSF, MeanInterarrival: simclock.Day, Window: faultinject.AnyTime},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(60 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	incs := site.Ledger.Incidents()
	if len(incs) == 0 {
		t.Fatal("no incidents at all; blackout test is vacuous")
	}
	for _, inc := range incs {
		if h := inc.StartedAt.HourOfDay(); h >= 8 && h < 18 {
			t.Errorf("incident %d (%s on %s) started at hour %d, inside the 08-18 blackout",
				inc.ID, inc.Category, inc.Host, h)
		}
	}
}

// TestAllZeroAnalystShareIsSafe: validation permits AnalystShare 0 on
// every front-end tier; the spread must degrade to zero analyst load, not
// divide 0/0 and poison host CPU accounting with NaN.
func TestAllZeroAnalystShareIsSafe(t *testing.T) {
	site, err := NewSite(WebFarmTopology(),
		WithSeed(3), WithNoFaults(),
		WithTierWorkload("web", WorkloadSpec{AnalystShare: Weight(0)}),
		WithTierWorkload("fe", WorkloadSpec{AnalystShare: Weight(0)}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(2 * simclock.Day); err != nil {
		t.Fatal(err)
	}
	for _, h := range site.DC.Hosts() {
		if u := h.CPUUtilisation(); u < 0 || u > 1 {
			t.Fatalf("host %s CPU utilisation %v with all-zero analyst shares", h.Name, u)
		}
	}
}

// TestFaultDomainEligibilityGate: tiers with nothing a category's
// injector can break get weight 0, so domain-scoped arrivals never
// no-op against an ineligible tier and dilute the effective rate.
func TestFaultDomainEligibilityGate(t *testing.T) {
	site, err := NewSite(WebFarmTopology(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	weights := func(cat metrics.Category) map[string]float64 {
		out := map[string]float64{}
		for _, d := range site.faultDomains(cat) {
			out[d.Tier] = d.Weight
		}
		return out
	}
	// Only the db tier has LSF targets / LSF daemons.
	for _, cat := range []metrics.Category{metrics.CatMidCrash, metrics.CatLSF} {
		w := weights(cat)
		if w["db"] <= 0 || w["web"] != 0 || w["fe"] != 0 {
			t.Errorf("%s weights = %v; want db-only", cat, w)
		}
	}
	// Only the fe tier deploys front-end services.
	if w := weights(metrics.CatFrontEnd); w["fe"] <= 0 || w["db"] != 0 || w["web"] != 0 {
		t.Errorf("front-end weights = %v; want fe-only", w)
	}
	// Host-scoped categories reach every tier; the webfarm spec doubles
	// hardware pressure on the commodity web boxes and halves the core's.
	if w := weights(metrics.CatHardware); w["db"] != 0.5 || w["web"] != 2 || w["fe"] != 1 {
		t.Errorf("hardware weights = %v; want {db:0.5, web:2, fe:1}", w)
	}
	// The web tier's webserver services are human-error targets; the fe
	// tier's frontend services too; db carries its 0.5 rate.
	if w := weights(metrics.CatHuman); w["db"] != 0.5 || w["web"] != 2 || w["fe"] != 1 {
		t.Errorf("human weights = %v; want {db:0.5, web:2, fe:1}", w)
	}
}

// TestMidCrashRateNotDilutedByDomains: with only one eligible tier, the
// domain machinery must deliver the same number of mid-crash injections
// a site-global campaign would — arrivals must not be wasted on tiers
// that cannot host the category.
func TestMidCrashRateNotDilutedByDomains(t *testing.T) {
	const span = 120 * simclock.Day
	run := func(topo Topology) int {
		site, err := NewSite(topo, WithSeed(21), WithFaults([]faultinject.Spec{
			{Category: metrics.CatMidCrash, MeanInterarrival: 10 * simclock.Day, Window: faultinject.Overnight},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := site.Run(span); err != nil {
			t.Fatal(err)
		}
		return site.Ledger.Count(metrics.CatMidCrash)
	}
	specced := run(WebFarmTopology())
	stripped := WebFarmTopology()
	stripped.Name = "webfarm-plain"
	for i := range stripped.Tiers {
		stripped.Tiers[i].Workload = nil
		stripped.Tiers[i].Faults = nil
	}
	plain := run(stripped)
	if plain == 0 {
		t.Fatal("site-global campaign injected nothing; test is vacuous")
	}
	// Different rng draw counts make exact equality too strong; but the
	// specced site must stay in the same ballpark, not a ~5x cut.
	if specced*2 < plain {
		t.Errorf("domain-scoped mid-crash injections %d vs site-global %d; arrivals are being wasted on ineligible tiers",
			specced, plain)
	}
}
