package qoscluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/simclock"
	"repro/internal/svc"
)

// TestMegaSiteTopology pins the shape of the datacentre-scale family: the
// canned megasite is 10k hosts with a ~1% database core, every tier
// validates, and the topology opts into the probe dispatcher.
func TestMegaSiteTopology(t *testing.T) {
	topo, ok := TopologyByName("megasite")
	if !ok {
		t.Fatal("megasite not registered")
	}
	total := 0
	for _, tier := range topo.Tiers {
		total += tier.Hosts
	}
	if total != 10000 {
		t.Errorf("megasite hosts = %d, want 10000", total)
	}
	if topo.Tiers[0].Name != "db" || topo.Tiers[0].Hosts != 100 {
		t.Errorf("db core = %+v, want 100 hosts", topo.Tiers[0])
	}
	if topo.Probes == nil {
		t.Error("megasite should declare a probe spec")
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("megasite invalid: %v", err)
	}

	big := MegaSiteTopology(130000)
	if err := big.Validate(); err != nil {
		t.Errorf("megasite-130000 invalid: %v", err)
	}
	names := map[string]bool{}
	for _, tier := range big.Tiers {
		names[tier.Name] = true
	}
	// 130k hosts minus core exceeds two web chunks.
	for _, want := range []string{"web-a", "web-b", "web-c"} {
		if !names[want] {
			t.Errorf("megasite-130000 missing chunk %s (tiers %v)", want, names)
		}
	}
}

// TestHostIPSpanning pins the multi-/24 address layout: the first 254
// hosts keep the legacy single-block addresses byte-for-byte, later hosts
// increment the third octet.
func TestHostIPSpanning(t *testing.T) {
	tier := Tier{Name: "web", IPBlock: "10.16.0", Hosts: 600}
	cases := []struct {
		i    int
		want string
	}{
		{0, "10.16.0.1"},
		{253, "10.16.0.254"},
		{254, "10.16.1.1"},
		{507, "10.16.1.254"},
		{508, "10.16.2.1"},
	}
	for _, c := range cases {
		if got := tier.hostIP(c.i); got != c.want {
			t.Errorf("hostIP(%d) = %s, want %s", c.i, got, c.want)
		}
	}
	// A non-zero base shifts the span.
	shifted := Tier{Name: "x", IPBlock: "10.2.5", Hosts: 300}
	if got := shifted.hostIP(254); got != "10.2.6.1" {
		t.Errorf("shifted hostIP(254) = %s, want 10.2.6.1", got)
	}
}

// TestTopologyScaleValidation exercises the validation paths that only
// exist at datacentre scale: IP-space exhaustion, span overlap between
// tiers, host-name collisions from widened ordinals, and probe-spec
// bounds — on 10k-host tiers, not just the small-tier cases the original
// suite covered.
func TestTopologyScaleValidation(t *testing.T) {
	base := func() Topology {
		return Topology{
			Name: "scale", Geo: "UK",
			Tiers: []Tier{
				{Name: "web", Role: "frontend", Hosts: 10000, IPBlock: "10.16.0",
					Hardware: []string{"linux-x86"},
					Services: []ServiceTemplate{{Kind: "webserver", Name: "WEB-{host}", Port: 8080}}},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("10k-host tier should validate: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Topology)
		wantErr string
	}{
		{"ip space exhausted", func(tp *Topology) {
			tp.Tiers[0].IPBlock = "10.16.220" // 10000 hosts need 40 blocks from .220
		}, "exhausting the IP space"},
		{"span overlap", func(tp *Topology) {
			// 10k hosts span .0-.39; a second tier at .20 lands inside.
			tp.Tiers = append(tp.Tiers, Tier{
				Name: "cache", Role: "frontend", Hosts: 10, IPBlock: "10.16.20",
				Hardware: []string{"linux-x86"},
				Services: []ServiceTemplate{{Kind: "webserver", Name: "C-{host}", Port: 8081}}})
		}, "share IP block"},
		{"admin span overlap", func(tp *Topology) {
			// 600 hosts from 10.0.255 would wrap into 10.1.x — caught as
			// exhaustion, but a tier based at 10.1.0 span-collides with the
			// reserved administration block even when it never names it.
			tp.Tiers[0].IPBlock = "10.1.0"
		}, "reserved for the administration tier"},
		{"host name collision across tiers", func(tp *Topology) {
			// tier "web" host 2001 is "web2001" — also tier "web2" host 1.
			tp.Tiers = append(tp.Tiers, Tier{
				Name: "web2", Role: "frontend", Hosts: 10, IPBlock: "10.17.0",
				Hardware: []string{"linux-x86"},
				Services: []ServiceTemplate{{Kind: "webserver", Name: "W2-{host}", Port: 8082}}})
		}, "expands in both tier"},
		{"service ordinal collision at scale", func(tp *Topology) {
			// %03d widens at ordinal 1000: "WEB-1000"... stay unique, but a
			// fixed-name template collides with itself across hosts.
			tp.Tiers[0].Services[0].Name = "WEB"
		}, "expands on both"},
		{"probe slots out of range", func(tp *Topology) {
			tp.Probes = &ProbeSpec{Slots: 5000}
		}, "slots out of range"},
		{"negative probe period", func(tp *Topology) {
			tp.Probes = &ProbeSpec{PeriodMinutes: -5}
		}, "period"},
		{"non-numeric ip octet", func(tp *Topology) {
			tp.Tiers[0].IPBlock = "10.sixteen.0"
		}, "octet"},
		{"zero-padded ip octet", func(tp *Topology) {
			tp.Tiers[0].IPBlock = "10.016.0"
		}, "octet"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo := base()
			c.mutate(&topo)
			err := topo.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestResolveTopologyMegaSiteN pins the parameterised family: megasite-N
// resolves (and registers) on demand, malformed or out-of-range names
// do not.
func TestResolveTopologyMegaSiteN(t *testing.T) {
	topo, ok := ResolveTopology("megasite-500")
	if !ok {
		t.Fatal("megasite-500 should resolve")
	}
	total := 0
	for _, tier := range topo.Tiers {
		total += tier.Hosts
	}
	if total != 500 {
		t.Errorf("megasite-500 hosts = %d", total)
	}
	if _, registered := TopologyByName("megasite-500"); !registered {
		t.Error("resolved megasite-500 should be registered for reuse")
	}
	// Registered names still win.
	if topo, ok := ResolveTopology("paper"); !ok || topo.Name != "paper" {
		t.Error("ResolveTopology should pass through registered names")
	}
	for _, bad := range []string{
		"megasite-", "megasite-0", "megasite-07", "megasite-99", // below minimum
		"megasite-130001", "megasite-9999999", "megasite-abc", "megasite-1e4",
		"gigasite-500",
	} {
		if _, ok := ResolveTopology(bad); ok {
			t.Errorf("%q should not resolve", bad)
		}
	}
}

// TestMegaSiteJSONRoundTrip extends the canonical-JSON contract to the
// probe spec and the scale family: the strict loader accepts what JSON()
// emits and returns the identical topology.
func TestMegaSiteJSONRoundTrip(t *testing.T) {
	topo, _ := TopologyByName("megasite")
	js, err := topo.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadTopology(strings.NewReader(string(js)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topo, back) {
		t.Error("megasite JSON round trip changed the topology")
	}
	if back.Probes == nil {
		t.Error("probe spec lost in round trip")
	}
}

// TestProbeEventReduction is the tentpole's scheduler-economy gate on the
// paper site: with the probe dispatcher enabled, the batched path must
// issue the same probes as the per-service reference path — with an
// identical simulation outcome — using >= 10x fewer scheduler events for
// the probe subsystem.
func TestProbeEventReduction(t *testing.T) {
	run := func(opts ...Option) *Site {
		site, err := NewSite(PaperTopology(), append([]Option{WithSeed(11), WithProbes(ProbeSpec{})}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := site.Run(simclock.Day); err != nil {
			t.Fatal(err)
		}
		return site
	}
	batched := run()
	ref := run(WithReferenceProbes())

	if !reflect.DeepEqual(batched.Report(), ref.Report()) {
		t.Errorf("batched probe path diverged from reference:\n%+v\n%+v", batched.Report(), ref.Report())
	}
	if got, want := batched.Probes.Probes(), ref.Probes.Probes(); got != want {
		t.Errorf("probe counts differ: batched %d, reference %d", got, want)
	}
	if b := batched.Probes.Batches(); b == 0 || batched.Probes.Probes()/b < 10 {
		t.Errorf("coalescing factor %d probes / %d batches < 10x", batched.Probes.Probes(), b)
	}
	if ref.Probes.Batches() != 0 {
		t.Errorf("reference path fired %d batch walks, want 0", ref.Probes.Batches())
	}
	// Each reference probe is its own scheduler event; batched walks
	// replace them wholesale, so total fired events drop by ~the probe
	// count.
	saved := ref.Sim.Fired() - batched.Sim.Fired()
	if saved < uint64(batched.Probes.Probes())/2 {
		t.Errorf("batched path saved only %d scheduler events over %d probes", saved, batched.Probes.Probes())
	}
}

// TestProbeDetection pins the probe engine's bookkeeping and its hook
// into the fault pipeline: a dead host turns its members' probes into
// timeouts (exit 124, growing fail streak), and a registered service
// fault is detected by the next probe cycle.
func TestProbeDetection(t *testing.T) {
	site, err := NewSite(SmallTopology(), WithSeed(3), WithNoFaults(), WithProbes(ProbeSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Run(1 * simclock.Hour); err != nil {
		t.Fatal(err)
	}
	if site.Probes.Fails() != 0 || site.Probes.LastExit("db", 0) != svc.ExitOK {
		t.Fatalf("healthy site should probe clean: fails=%d exit=%d",
			site.Probes.Fails(), site.Probes.LastExit("db", 0))
	}
	if site.Probes.LastExit("nosuch", 0) != -1 || site.Probes.FailStreak("db", -1) != -1 {
		t.Error("unknown tier/index should report -1")
	}
	site.DC.Host("db001").Crash()
	if err := site.Run(2 * simclock.Hour); err != nil {
		t.Fatal(err)
	}
	// db001's members are the tier's first entries (deployment order).
	if got := site.Probes.LastExit("db", 0); got != svc.ExitTimeout {
		t.Errorf("probe of a dead host = exit %d, want %d", got, svc.ExitTimeout)
	}
	if streak := site.Probes.FailStreak("db", 0); streak < 5 {
		t.Errorf("fail streak = %d after an hour of 5-minute probes", streak)
	}
	if site.Probes.Fails() == 0 {
		t.Error("fail counter never moved")
	}
}

// TestMegaSiteSublinearScaling is the scale gate: a 10x host-count jump
// (1k → 10k) must cost measurably less than 10x the scheduler events per
// sim-day, because probe dispatch coalesces per (tier, slot) instead of
// per service.
func TestMegaSiteSublinearScaling(t *testing.T) {
	day := func(name string) (fired uint64, probes, batches int64) {
		topo, ok := ResolveTopology(name)
		if !ok {
			t.Fatalf("resolve %s", name)
		}
		site, err := NewSite(topo, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := site.Run(simclock.Day); err != nil {
			t.Fatal(err)
		}
		return site.Sim.Fired(), site.Probes.Probes(), site.Probes.Batches()
	}
	fired1k, probes1k, batches1k := day("megasite-1000")
	fired10k, probes10k, batches10k := day("megasite")
	if probes10k < 9*probes1k {
		t.Errorf("probe coverage should scale with hosts: %d vs %d", probes1k, probes10k)
	}
	// Batch walks are per (tier, slot, cycle): constant in host count.
	if batches10k > 2*batches1k {
		t.Errorf("batch walks should not scale with hosts: %d vs %d", batches1k, batches10k)
	}
	if fired10k >= 8*fired1k {
		t.Errorf("scheduler events scaled superlinearly: %d at 1k hosts, %d at 10k", fired1k, fired10k)
	}
}
