// Batchrescue: a walkthrough of §4's LSF management. Analysts submit batch
// jobs to a hand-picked database server; the server crashes mid-job; the
// administration servers notice the failed jobs on their next sweep, read
// the freshest DGSPL, and resubmit every job to the best available server
// of equal or higher power — while the local service agent restarts the
// crashed database in parallel.
package main

import (
	"fmt"

	qoscluster "repro"
	"repro/internal/agents"
	"repro/internal/faultinject"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func main() {
	site := qoscluster.BuildSite(
		qoscluster.SiteSpec{Name: "demo-dc", Geo: "UK", Seed: 3,
			DatabaseHosts: 6, TransactionHosts: 1, FrontEndHosts: 1},
		qoscluster.Options{Mode: qoscluster.ModeAgents, Faults: []faultinject.Spec{}},
	)
	site.Run(simclock.Hour) // agents settle; first DGSPLs generated

	// The user hand-picks ORA-002 (an E4500) for three overnight jobs.
	victim := site.Dir.Get("ORA-002")
	var jobs []*lsf.Job
	for i := 0; i < 3; i++ {
		j := site.LSF.Submit(fmt.Sprintf("risk-model-%d", i+1), "analyst12",
			victim.Spec.Name, 1.0, 256, 0.1, 3*simclock.Hour)
		jobs = append(jobs, j)
	}
	fmt.Printf("submitted %d jobs to %s (%s, power %.1f)\n",
		len(jobs), victim.Spec.Name, victim.Host.Model.Name, victim.Host.Model.Power())

	// An hour in, the database crashes mid-job.
	site.Run(site.Sim.Now() + simclock.Hour)
	site.Sim.Schedule(site.Sim.Now(), "crash", func(now simclock.Time) {
		victim.Crash()
		site.LSF.FailJobsOn(victim.Spec.Name, "database crashed mid-job")
		site.Registry.Add(metrics.CatMidCrash, victim.Host.Name,
			agents.ServiceAspect(victim.Spec.Name), "demo", false, now, nil)
		fmt.Printf("\n%v: %s crashed with %d jobs running\n", now, victim.Spec.Name, len(jobs))
	})

	// Give the admin sweep one cron period to act.
	site.Run(site.Sim.Now() + 15*simclock.Minute)

	fmt.Println("\nafter the administration servers' batch sweep:")
	for _, j := range jobs {
		dest := site.Dir.Get(j.Server)
		fmt.Printf("  job %d %-14s -> %s on %s (%s, power %.1f), attempts=%d\n",
			j.ID, j.State, j.Server, dest.Host.Name, dest.Host.Model.Name,
			dest.Host.Model.Power(), j.Attempts)
	}
	fmt.Printf("admin resubmissions: %d\n", site.Admin.Resubmissions)

	// Show the shortlist the decision came from.
	fmt.Println("\nDGSPL shortlist for oracle (best first):")
	for _, e := range site.Admin.Shortlist("oracle") {
		fmt.Printf("  %-8s %-8s load=%.2f slots-free=%d\n", e.AppName, e.ServerType, e.Load, e.SlotsFree())
	}

	// Run to completion: jobs finish on their new servers, and the crashed
	// database is long since restarted by its service agent.
	site.Run(site.Sim.Now() + 8*simclock.Hour)
	fmt.Println()
	for _, j := range jobs {
		fmt.Printf("  job %d final state %s on %s\n", j.ID, j.State, j.Server)
	}
	fmt.Printf("%s is %v again (restarted by its intelliagent)\n", victim.Spec.Name, victim.State())
}
