// Batchrescue: a walkthrough of §4's LSF management. Analysts submit batch
// jobs to a hand-picked database server; the server crashes mid-job; the
// administration servers notice the failed jobs on their next sweep, read
// the freshest DGSPL, and resubmit every job to the best available server
// of equal or higher power — while the local service agent restarts the
// crashed database in parallel.
package main

import (
	"fmt"
	"log"

	qoscluster "repro"
	"repro/internal/agents"
	"repro/internal/lsf"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func main() {
	// A paper-shaped demo site: six database hosts with the E10K/E4500
	// spread and the 3:1 Oracle/Sybase mix, declared via Cycle/Phases the
	// way the canned paper topology is.
	topo := qoscluster.Topology{
		Name: "demo-dc", Geo: "UK",
		Tiers: []qoscluster.Tier{
			{Name: "db", Role: "database", Hosts: 6, IPBlock: "10.2.0",
				Hardware: []string{"E10K", "E4500", "E4500"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, Cycle: 4, Phases: []int{0, 1, 2}, LSFTarget: true},
					{Kind: "sybase", Name: "SYB-%03d", Port: 4100, Cycle: 4, Phases: []int{3}, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "tx", Role: "transaction", Hosts: 1, IPBlock: "10.3.0",
				Hardware: []string{"E450"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				}},
			{Name: "fe", Role: "frontend", Hosts: 1, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "db"},
				}},
		},
	}
	site, err := qoscluster.NewSite(topo,
		qoscluster.WithSeed(3),
		qoscluster.WithMode(qoscluster.ModeAgents),
		qoscluster.WithNoFaults(),
	)
	if err != nil {
		log.Fatal(err)
	}
	must(site.Run(simclock.Hour)) // agents settle; first DGSPLs generated

	// The user hand-picks ORA-002 (an E4500) for three overnight jobs.
	victim := site.Dir.Get("ORA-002")
	var jobs []*lsf.Job
	for i := 0; i < 3; i++ {
		j := site.LSF.Submit(fmt.Sprintf("risk-model-%d", i+1), "analyst12",
			victim.Spec.Name, 1.0, 256, 0.1, 3*simclock.Hour)
		jobs = append(jobs, j)
	}
	fmt.Printf("submitted %d jobs to %s (%s, power %.1f)\n",
		len(jobs), victim.Spec.Name, victim.Host.Model.Name, victim.Host.Model.Power())

	// An hour in, the database crashes mid-job.
	must(site.Run(site.Sim.Now() + simclock.Hour))
	site.Sim.Schedule(site.Sim.Now(), "crash", func(now simclock.Time) {
		victim.Crash()
		site.LSF.FailJobsOn(victim.Spec.Name, "database crashed mid-job")
		site.Registry.Add(metrics.CatMidCrash, victim.Host.Name,
			agents.ServiceAspect(victim.Spec.Name), "demo", false, now, nil)
		fmt.Printf("\n%v: %s crashed with %d jobs running\n", now, victim.Spec.Name, len(jobs))
	})

	// Give the admin sweep one cron period to act.
	must(site.Run(site.Sim.Now() + 15*simclock.Minute))

	fmt.Println("\nafter the administration servers' batch sweep:")
	for _, j := range jobs {
		dest := site.Dir.Get(j.Server)
		fmt.Printf("  job %d %-14s -> %s on %s (%s, power %.1f), attempts=%d\n",
			j.ID, j.State, j.Server, dest.Host.Name, dest.Host.Model.Name,
			dest.Host.Model.Power(), j.Attempts)
	}
	fmt.Printf("admin resubmissions: %d\n", site.Admin.Resubmissions)

	// Show the shortlist the decision came from.
	fmt.Println("\nDGSPL shortlist for oracle (best first):")
	for _, e := range site.Admin.Shortlist("oracle") {
		fmt.Printf("  %-8s %-8s load=%.2f slots-free=%d\n", e.AppName, e.ServerType, e.Load, e.SlotsFree())
	}

	// Run to completion: jobs finish on their new servers, and the crashed
	// database is long since restarted by its service agent.
	must(site.Run(site.Sim.Now() + 8*simclock.Hour))
	fmt.Println()
	for _, j := range jobs {
		fmt.Printf("  job %d final state %s on %s\n", j.ID, j.State, j.Server)
	}
	fmt.Printf("%s is %v again (restarted by its intelliagent)\n", victim.Spec.Name, victim.State())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
