// Tierdomains: run the shipped webfarm — whose tiers carry real per-tier
// workload and fault domains — for a quarter, print the per-tier downtime
// breakdown, then re-run the same seed with the web tier's fault
// intensity quadrupled (WithTierFaultScale, the knob the campaign's
// -tierfaults axis sweeps) and show where the extra incidents landed.
package main

import (
	"fmt"
	"log"

	qoscluster "repro"
	"repro/internal/simclock"
)

func main() {
	const (
		seed = 7
		span = 90 * simclock.Day
	)
	run := func(opts ...qoscluster.Option) *qoscluster.Site {
		site, err := qoscluster.NewSite(qoscluster.WebFarmTopology(),
			append([]qoscluster.Option{
				qoscluster.WithSeed(seed),
				qoscluster.WithMode(qoscluster.ModeAgents),
			}, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		if err := site.Run(span); err != nil {
			log.Fatal(err)
		}
		return site
	}

	baseline := run()
	fmt.Println("webfarm, one quarter, shipped per-tier domains:")
	fmt.Print(baseline.Report().Format())

	scaled := run(qoscluster.WithTierFaultScale("web", 4))
	fmt.Println("\nsame seed with the web tier's fault weight x4:")
	fmt.Print(scaled.Report().Format())

	fmt.Println("\nper-tier incidents, baseline vs web-x4:")
	base, quad := baseline.Report().Tiers, scaled.Report().Tiers
	for i := range base {
		fmt.Printf("  %-8s %4d -> %4d\n", base[i].Tier, base[i].Incidents, quad[i].Incidents)
	}
}
