// Griddiscovery: the paper's §5 outlook — "we hope the way agents generate
// dynamic global service lists can be used in the grid resource discovery
// and selection mechanisms for semantic grids". This example treats the
// administration servers' DGSPL files on the shared pool as a grid
// information service: an external consumer decodes the flat-ASCII list and
// selects execution targets by capability, load and locality, without
// talking to any host directly.
package main

import (
	"fmt"
	"log"

	qoscluster "repro"
	"repro/internal/simclock"
)

func main() {
	topo := qoscluster.Topology{
		Name: "london-dc1", Geo: "UK",
		Tiers: []qoscluster.Tier{
			{Name: "db", Role: "database", Hosts: 8, IPBlock: "10.2.0",
				Hardware: []string{"E10K", "E4500", "E4500"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, Cycle: 4, Phases: []int{0, 1, 2}, LSFTarget: true},
					{Kind: "sybase", Name: "SYB-%03d", Port: 4100, Cycle: 4, Phases: []int{3}, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "tx", Role: "transaction", Hosts: 2, IPBlock: "10.3.0",
				Hardware: []string{"E450", "HP-K"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				}},
			{Name: "fe", Role: "frontend", Hosts: 2, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "db"},
				}},
		},
	}
	site, err := qoscluster.NewSite(topo,
		qoscluster.WithSeed(9),
		qoscluster.WithMode(qoscluster.ModeAgents),
		qoscluster.WithNoFaults(),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Let two DGSPL generations happen.
	if err := site.Run(35 * simclock.Minute); err != nil {
		log.Fatal(err)
	}

	// A "grid broker" reads the per-type service list straight off the
	// admin servers' NFS pool — the published, tool-readable artifact.
	list, err := site.Admin.ReadPoolDGSPL("oracle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid information service: %d oracle endpoints published at t=%v\n\n",
		len(list.Entries), list.GeneratedAt)
	fmt.Printf("%-10s %-8s %-10s %5s %8s %6s %6s %-4s %-12s\n",
		"service", "server", "type", "cpus", "memMB", "load", "slots", "geo", "site")
	for _, e := range list.Entries {
		fmt.Printf("%-10s %-8s %-10s %5d %8d %6.2f %6d %-4s %-12s\n",
			e.AppName, e.Server, e.ServerType, e.CPUs, e.MemoryMB, e.Load, e.SlotsFree(), e.Geo, e.Site)
	}

	// Capability-based selection: at least 8 CPUs, UK-resident, least
	// loaded relative to power — exactly the shortlist the batch-rescue
	// path uses internally.
	fmt.Println("\nbroker query: >=8 CPUs, geo=UK, ranked by free power")
	power := func(model string, cpus int) float64 { return float64(cpus) }
	for i, e := range list.Shortlist("oracle", power) {
		if e.CPUs < 8 || e.Geo != "UK" {
			continue
		}
		fmt.Printf("  %d. %s on %s (%d CPUs, load %.2f)\n", i+1, e.AppName, e.Server, e.CPUs, e.Load)
	}
}
