// Griddiscovery: the paper's §5 outlook — "we hope the way agents generate
// dynamic global service lists can be used in the grid resource discovery
// and selection mechanisms for semantic grids". This example treats the
// administration servers' DGSPL files on the shared pool as a grid
// information service: an external consumer decodes the flat-ASCII list and
// selects execution targets by capability, load and locality, without
// talking to any host directly.
package main

import (
	"fmt"

	qoscluster "repro"
	"repro/internal/faultinject"
	"repro/internal/simclock"
)

func main() {
	site := qoscluster.BuildSite(
		qoscluster.SiteSpec{Name: "london-dc1", Geo: "UK", Seed: 9,
			DatabaseHosts: 8, TransactionHosts: 2, FrontEndHosts: 2},
		qoscluster.Options{Mode: qoscluster.ModeAgents, Faults: []faultinject.Spec{}},
	)
	// Let two DGSPL generations happen.
	site.Run(35 * simclock.Minute)

	// A "grid broker" reads the per-type service list straight off the
	// admin servers' NFS pool — the published, tool-readable artifact.
	list, err := site.Admin.ReadPoolDGSPL("oracle")
	if err != nil {
		panic(err)
	}
	fmt.Printf("grid information service: %d oracle endpoints published at t=%v\n\n",
		len(list.Entries), list.GeneratedAt)
	fmt.Printf("%-10s %-8s %-10s %5s %8s %6s %6s %-4s %-12s\n",
		"service", "server", "type", "cpus", "memMB", "load", "slots", "geo", "site")
	for _, e := range list.Entries {
		fmt.Printf("%-10s %-8s %-10s %5d %8d %6.2f %6d %-4s %-12s\n",
			e.AppName, e.Server, e.ServerType, e.CPUs, e.MemoryMB, e.Load, e.SlotsFree(), e.Geo, e.Site)
	}

	// Capability-based selection: at least 8 CPUs, UK-resident, least
	// loaded relative to power — exactly the shortlist the batch-rescue
	// path uses internally.
	fmt.Println("\nbroker query: >=8 CPUs, geo=UK, ranked by free power")
	power := func(model string, cpus int) float64 { return float64(cpus) }
	for i, e := range list.Shortlist("oracle", power) {
		if e.CPUs < 8 || e.Geo != "UK" {
			continue
		}
		fmt.Printf("  %d. %s on %s (%d CPUs, load %.2f)\n", i+1, e.AppName, e.Server, e.CPUs, e.Load)
	}
}
