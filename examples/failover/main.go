// Failover: the infrastructure resilience mechanics of §3.1 — the
// administration-server pair failing over when the primary dies, and
// intelliagent traffic automatically re-routing over the public LAN when
// the private agent network fails.
package main

import (
	"fmt"

	qoscluster "repro"
	"repro/internal/faultinject"
	"repro/internal/simclock"
)

func main() {
	site := qoscluster.BuildSite(
		qoscluster.SiteSpec{Name: "demo-dc", Geo: "UK", Seed: 5,
			DatabaseHosts: 4, TransactionHosts: 1, FrontEndHosts: 1},
		qoscluster.Options{Mode: qoscluster.ModeAgents, Faults: []faultinject.Spec{}},
	)
	site.Run(30 * simclock.Minute)

	fmt.Printf("active admin server: %s, DLSPs received: %d\n",
		site.Admin.Active().Host.Name, site.Admin.DLSPReceived)

	// --- Part 1: kill the primary administration server. ---
	fmt.Println("\n-- crashing admin1 --")
	site.DC.Host("admin1").Crash()
	site.Run(site.Sim.Now() + 5*simclock.Minute)
	fmt.Printf("active admin server now: %s (failovers: %d)\n",
		site.Admin.Active().Host.Name, site.Admin.Failovers)
	before := site.Admin.DLSPReceived
	site.Run(site.Sim.Now() + 15*simclock.Minute)
	fmt.Printf("DLSPs keep flowing to the standby: +%d in 15 minutes\n",
		site.Admin.DLSPReceived-before)
	if dg := site.Admin.LatestDGSPL(); dg != nil {
		fmt.Printf("DGSPL still generated from the shared NFS pool: %d entries\n", len(dg.Entries))
	}

	// --- Part 2: take the private intelliagent network down. ---
	fmt.Println("\n-- failing the private agent network --")
	pubBefore := site.Public.Stats().Bytes
	privBefore := site.Private.Stats().Bytes
	site.Private.SetUp(false)
	site.Run(site.Sim.Now() + 30*simclock.Minute)
	fmt.Printf("agent traffic rerouted to public LAN: +%d bytes public, +%d bytes private\n",
		site.Public.Stats().Bytes-pubBefore, site.Private.Stats().Bytes-privBefore)

	// --- Part 3: restore the private network; traffic moves back. ---
	fmt.Println("\n-- restoring the private network --")
	site.Private.SetUp(true)
	pubBefore = site.Public.Stats().Bytes
	privBefore = site.Private.Stats().Bytes
	site.Run(site.Sim.Now() + 30*simclock.Minute)
	fmt.Printf("traffic back on the private LAN: +%d bytes private, +%d bytes public\n",
		site.Private.Stats().Bytes-privBefore, site.Public.Stats().Bytes-pubBefore)

}
