// Failover: the infrastructure resilience mechanics of §3.1 — the
// administration-server pair failing over when the primary dies, and
// intelliagent traffic automatically re-routing over the public LAN when
// the private agent network fails.
package main

import (
	"fmt"
	"log"

	qoscluster "repro"
	"repro/internal/simclock"
)

func main() {
	topo := qoscluster.Topology{
		Name: "demo-dc", Geo: "UK",
		Tiers: []qoscluster.Tier{
			{Name: "db", Role: "database", Hosts: 4, IPBlock: "10.2.0",
				Hardware: []string{"E10K", "E4500", "E4500"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "tx", Role: "transaction", Hosts: 1, IPBlock: "10.3.0",
				Hardware: []string{"E450"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				}},
			{Name: "fe", Role: "frontend", Hosts: 1, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "db"},
				}},
		},
	}
	site, err := qoscluster.NewSite(topo,
		qoscluster.WithSeed(5),
		qoscluster.WithMode(qoscluster.ModeAgents),
		qoscluster.WithNoFaults(),
	)
	if err != nil {
		log.Fatal(err)
	}
	must(site.Run(30 * simclock.Minute))

	fmt.Printf("active admin server: %s, DLSPs received: %d\n",
		site.Admin.Active().Host.Name, site.Admin.DLSPReceived)

	// --- Part 1: kill the primary administration server. ---
	fmt.Println("\n-- crashing admin1 --")
	site.DC.Host("admin1").Crash()
	must(site.Run(site.Sim.Now() + 5*simclock.Minute))
	fmt.Printf("active admin server now: %s (failovers: %d)\n",
		site.Admin.Active().Host.Name, site.Admin.Failovers)
	before := site.Admin.DLSPReceived
	must(site.Run(site.Sim.Now() + 15*simclock.Minute))
	fmt.Printf("DLSPs keep flowing to the standby: +%d in 15 minutes\n",
		site.Admin.DLSPReceived-before)
	if dg := site.Admin.LatestDGSPL(); dg != nil {
		fmt.Printf("DGSPL still generated from the shared NFS pool: %d entries\n", len(dg.Entries))
	}

	// --- Part 2: take the private intelliagent network down. ---
	fmt.Println("\n-- failing the private agent network --")
	pubBefore := site.Public.Stats().Bytes
	privBefore := site.Private.Stats().Bytes
	site.Private.SetUp(false)
	must(site.Run(site.Sim.Now() + 30*simclock.Minute))
	fmt.Printf("agent traffic rerouted to public LAN: +%d bytes public, +%d bytes private\n",
		site.Public.Stats().Bytes-pubBefore, site.Private.Stats().Bytes-privBefore)

	// --- Part 3: restore the private network; traffic moves back. ---
	fmt.Println("\n-- restoring the private network --")
	site.Private.SetUp(true)
	pubBefore = site.Public.Stats().Bytes
	privBefore = site.Private.Stats().Bytes
	must(site.Run(site.Sim.Now() + 30*simclock.Minute))
	fmt.Printf("traffic back on the private LAN: +%d bytes private, +%d bytes public\n",
		site.Private.Stats().Bytes-privBefore, site.Public.Stats().Bytes-pubBefore)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
