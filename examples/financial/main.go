// Financial: the paper's evaluation end to end — a UK financial
// datacentre running a year of manual operations and then the same year
// under intelliagents, printing the Figure-2 downtime comparison.
//
// By default this runs 90-day years on the scaled site so it finishes in
// seconds; pass -days 365 for the full year the paper reports.
package main

import (
	"flag"
	"fmt"

	qoscluster "repro"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func main() {
	days := flag.Int("days", 90, "length of each simulated year-slice")
	seed := flag.Uint64("seed", 7, "simulation seed")
	flag.Parse()
	span := simclock.Time(*days) * simclock.Day

	fmt.Printf("simulating %d days of the financial site, seed %d\n\n", *days, *seed)

	before := qoscluster.BuildSite(qoscluster.SmallSite(*seed), qoscluster.Options{Mode: qoscluster.ModeManual})
	before.Run(span)
	rb := before.Report()
	fmt.Println(rb.Format())

	after := qoscluster.BuildSite(qoscluster.SmallSite(*seed), qoscluster.Options{Mode: qoscluster.ModeAgents})
	after.Run(span)
	ra := after.Report()
	fmt.Println(ra.Format())

	fmt.Println("category              before      after")
	for _, cat := range metrics.Categories {
		fmt.Printf("%-16s %10.1fh %10.1fh\n", cat, rb.DowntimeHours(cat), ra.DowntimeHours(cat))
	}
	if ra.Total > 0 {
		fmt.Printf("\nimprovement: %.1fx less downtime (paper: 550h -> ~31h over a full year)\n",
			rb.Total.Hours()/ra.Total.Hours())
	}
}
