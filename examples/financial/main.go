// Financial: the paper's evaluation end to end — a UK financial
// datacentre running a year of manual operations and then the same year
// under intelliagents, printing the Figure-2 downtime comparison.
//
// By default this runs 90-day years on the scaled site so it finishes in
// seconds; pass -days 365 for the full year the paper reports, or -site
// to run any registered topology (paper, webfarm, computefarm, ...).
package main

import (
	"flag"
	"fmt"
	"log"

	qoscluster "repro"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func main() {
	days := flag.Int("days", 90, "length of each simulated year-slice")
	seed := flag.Uint64("seed", 7, "simulation seed")
	siteName := flag.String("site", "small", "registered site topology to run")
	flag.Parse()
	span := simclock.Time(*days) * simclock.Day

	topo, ok := qoscluster.TopologyByName(*siteName)
	if !ok {
		log.Fatalf("unknown site topology %q (registered: %v)", *siteName, qoscluster.TopologyNames())
	}
	fmt.Printf("simulating %d days of site %s, seed %d\n\n", *days, topo.Name, *seed)

	run := func(mode qoscluster.Mode) qoscluster.Report {
		site, err := qoscluster.NewSite(topo,
			qoscluster.WithSeed(*seed), qoscluster.WithMode(mode))
		if err != nil {
			log.Fatal(err)
		}
		if err := site.Run(span); err != nil {
			log.Fatal(err)
		}
		return site.Report()
	}

	rb := run(qoscluster.ModeManual)
	fmt.Println(rb.Format())
	ra := run(qoscluster.ModeAgents)
	fmt.Println(ra.Format())

	fmt.Println("category              before      after")
	for _, cat := range metrics.Categories {
		fmt.Printf("%-16s %10.1fh %10.1fh\n", cat, rb.DowntimeHours(cat), ra.DowntimeHours(cat))
	}
	if ra.Total > 0 {
		fmt.Printf("\nimprovement: %.1fx less downtime (paper: 550h -> ~31h over a full year)\n",
			rb.Total.Hours()/ra.Total.Hours())
	}
}
