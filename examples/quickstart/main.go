// Quickstart: build a five-database cluster, crash one Oracle instance,
// and watch the local service intelliagent detect it within one cron
// period, diagnose the root cause and restart the database — the paper's
// core loop on the smallest possible stage.
package main

import (
	"fmt"

	qoscluster "repro"
	"repro/internal/agents"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func main() {
	// A small site with no background fault campaign: we inject the one
	// fault ourselves so every line of output is ours.
	site := qoscluster.BuildSite(
		qoscluster.SiteSpec{Name: "demo-dc", Geo: "UK", Seed: 1,
			DatabaseHosts: 5, TransactionHosts: 1, FrontEndHosts: 1},
		qoscluster.Options{Mode: qoscluster.ModeAgents, Faults: []faultinject.Spec{}},
	)
	// Let the agents settle in for an hour.
	site.Run(simclock.Hour)

	victim := site.Dir.Get("ORA-001")
	fmt.Printf("before: %s on %s is %v\n", victim.Spec.Name, victim.Host.Name, victim.State())

	// Crash it mid-flight, as an overnight batch job would.
	crashAt := site.Sim.Now()
	site.Sim.Schedule(crashAt, "demo-crash", func(now simclock.Time) {
		victim.Crash()
		site.Registry.Add(metrics.CatMidCrash, victim.Host.Name,
			agents.ServiceAspect(victim.Spec.Name), "demo crash", false, now, nil)
		fmt.Printf("%v: %s crashed\n", now, victim.Spec.Name)
	})

	// Advance 30 minutes: the cron-awakened service agent finds the
	// refused probe, diagnoses the crash and restarts the database.
	site.Run(site.Sim.Now() + 30*simclock.Minute)

	fmt.Printf("after:  %s is %v\n", victim.Spec.Name, victim.State())
	inc := site.Ledger.Incidents()[0]
	fmt.Printf("detected by %s after %v; resolved by %s after %v total downtime\n",
		inc.DetectedBy, inc.DetectionLatency(), inc.ResolvedBy, inc.Downtime(site.Sim.Now()))

	// The agent's own flag files and activity log tell the same story.
	for _, a := range site.Agents {
		if a.Name() == "service-ORA-001" {
			fmt.Println("\nagent activity log:")
			for _, line := range a.LogLines() {
				fmt.Println(" ", line)
			}
		}
	}
}
