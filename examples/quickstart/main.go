// Quickstart: declare a five-database cluster as a Topology, crash one
// Oracle instance, and watch the local service intelliagent detect it
// within one cron period, diagnose the root cause and restart the
// database — the paper's core loop on the smallest possible stage.
package main

import (
	"fmt"
	"log"

	qoscluster "repro"
	"repro/internal/agents"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func main() {
	// A site is data: tiers of hosts with a hardware mix and service
	// templates. This one is five Oracle boxes (each also an LSF batch
	// target), one feed handler and one front end pinned to a database.
	topo := qoscluster.Topology{
		Name: "demo-dc", Geo: "UK",
		Tiers: []qoscluster.Tier{
			{Name: "db", Role: "database", Hosts: 5, IPBlock: "10.2.0",
				Hardware: []string{"E4500"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "oracle", Name: "ORA-%03d", Port: 1521, LSFTarget: true},
					{Kind: "lsf", Name: "LSF-{host}"},
				}},
			{Name: "tx", Role: "transaction", Hosts: 1, IPBlock: "10.3.0",
				Hardware: []string{"E450"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "feedhandler", Name: "FEED-%03d", Port: 7000, PortStep: 1},
				}},
			{Name: "fe", Role: "frontend", Hosts: 1, IPBlock: "10.4.0",
				Hardware: []string{"SP2"},
				Services: []qoscluster.ServiceTemplate{
					{Kind: "frontend", Name: "FE-%03d", Port: 8000, PortStep: 1, DependsOn: "db"},
				}},
		},
	}
	// No background fault campaign: we inject the one fault ourselves so
	// every line of output is ours.
	site, err := qoscluster.NewSite(topo,
		qoscluster.WithSeed(1),
		qoscluster.WithMode(qoscluster.ModeAgents),
		qoscluster.WithNoFaults(),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Let the agents settle in for an hour.
	if err := site.Run(simclock.Hour); err != nil {
		log.Fatal(err)
	}

	victim := site.Dir.Get("ORA-001")
	fmt.Printf("before: %s on %s is %v\n", victim.Spec.Name, victim.Host.Name, victim.State())

	// Crash it mid-flight, as an overnight batch job would.
	crashAt := site.Sim.Now()
	site.Sim.Schedule(crashAt, "demo-crash", func(now simclock.Time) {
		victim.Crash()
		site.Registry.Add(metrics.CatMidCrash, victim.Host.Name,
			agents.ServiceAspect(victim.Spec.Name), "demo crash", false, now, nil)
		fmt.Printf("%v: %s crashed\n", now, victim.Spec.Name)
	})

	// Advance 30 minutes: the cron-awakened service agent finds the
	// refused probe, diagnoses the crash and restarts the database.
	if err := site.Run(site.Sim.Now() + 30*simclock.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after:  %s is %v\n", victim.Spec.Name, victim.State())
	inc := site.Ledger.Incidents()[0]
	fmt.Printf("detected by %s after %v; resolved by %s after %v total downtime\n",
		inc.DetectedBy, inc.DetectionLatency(), inc.ResolvedBy, inc.Downtime(site.Sim.Now()))

	// The agent's own flag files and activity log tell the same story.
	for _, a := range site.Agents {
		if a.Name() == "service-ORA-001" {
			fmt.Println("\nagent activity log:")
			for _, line := range a.LogLines() {
				fmt.Println(" ", line)
			}
		}
	}
}
